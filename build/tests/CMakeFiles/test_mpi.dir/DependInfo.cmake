
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mpi/coll_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/coll_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/coll_test.cpp.o.d"
  "/root/repo/tests/mpi/comm_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/comm_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/comm_test.cpp.o.d"
  "/root/repo/tests/mpi/conn_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/conn_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/conn_test.cpp.o.d"
  "/root/repo/tests/mpi/determinism_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/determinism_test.cpp.o.d"
  "/root/repo/tests/mpi/paper_claims_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/paper_claims_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/paper_claims_test.cpp.o.d"
  "/root/repo/tests/mpi/property_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/property_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/property_test.cpp.o.d"
  "/root/repo/tests/mpi/pt2pt_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/pt2pt_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/pt2pt_test.cpp.o.d"
  "/root/repo/tests/mpi/unit_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/unit_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/unit_test.cpp.o.d"
  "/root/repo/tests/mpi/vcoll_test.cpp" "tests/CMakeFiles/test_mpi.dir/mpi/vcoll_test.cpp.o" "gcc" "tests/CMakeFiles/test_mpi.dir/mpi/vcoll_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/odmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
