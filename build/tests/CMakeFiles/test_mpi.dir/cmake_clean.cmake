file(REMOVE_RECURSE
  "CMakeFiles/test_mpi.dir/mpi/coll_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/coll_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/comm_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/comm_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/conn_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/conn_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/determinism_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/determinism_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/paper_claims_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/paper_claims_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/property_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/property_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/pt2pt_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/pt2pt_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/unit_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/unit_test.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/vcoll_test.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/vcoll_test.cpp.o.d"
  "test_mpi"
  "test_mpi.pdb"
  "test_mpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
