# Empty compiler generated dependencies file for nas_demo.
# This may be replaced when dependencies are built.
