file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_nas_bvia.dir/bench_fig7_nas_bvia.cpp.o"
  "CMakeFiles/bench_fig7_nas_bvia.dir/bench_fig7_nas_bvia.cpp.o.d"
  "bench_fig7_nas_bvia"
  "bench_fig7_nas_bvia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_nas_bvia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
