# Empty compiler generated dependencies file for bench_fig7_nas_bvia.
# This may be replaced when dependencies are built.
