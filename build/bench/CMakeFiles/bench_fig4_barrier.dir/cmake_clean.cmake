file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_barrier.dir/bench_fig4_barrier.cpp.o"
  "CMakeFiles/bench_fig4_barrier.dir/bench_fig4_barrier.cpp.o.d"
  "bench_fig4_barrier"
  "bench_fig4_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
