file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_allreduce.dir/bench_fig5_allreduce.cpp.o"
  "CMakeFiles/bench_fig5_allreduce.dir/bench_fig5_allreduce.cpp.o.d"
  "bench_fig5_allreduce"
  "bench_fig5_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
