# Empty dependencies file for bench_fig8_init_time.
# This may be replaced when dependencies are built.
