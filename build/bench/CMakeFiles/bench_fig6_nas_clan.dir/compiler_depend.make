# Empty compiler generated dependencies file for bench_fig6_nas_clan.
# This may be replaced when dependencies are built.
