file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_nas_clan.dir/bench_fig6_nas_clan.cpp.o"
  "CMakeFiles/bench_fig6_nas_clan.dir/bench_fig6_nas_clan.cpp.o.d"
  "bench_fig6_nas_clan"
  "bench_fig6_nas_clan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_nas_clan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
