# Empty compiler generated dependencies file for bench_fig1_vi_scaling.
# This may be replaced when dependencies are built.
