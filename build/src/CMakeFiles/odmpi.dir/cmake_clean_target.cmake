file(REMOVE_RECURSE
  "libodmpi.a"
)
