
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/coll/allgather.cpp" "src/CMakeFiles/odmpi.dir/mpi/coll/allgather.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/coll/allgather.cpp.o.d"
  "/root/repo/src/mpi/coll/allreduce.cpp" "src/CMakeFiles/odmpi.dir/mpi/coll/allreduce.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/coll/allreduce.cpp.o.d"
  "/root/repo/src/mpi/coll/alltoall.cpp" "src/CMakeFiles/odmpi.dir/mpi/coll/alltoall.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/coll/alltoall.cpp.o.d"
  "/root/repo/src/mpi/coll/barrier.cpp" "src/CMakeFiles/odmpi.dir/mpi/coll/barrier.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/coll/barrier.cpp.o.d"
  "/root/repo/src/mpi/coll/bcast.cpp" "src/CMakeFiles/odmpi.dir/mpi/coll/bcast.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/coll/bcast.cpp.o.d"
  "/root/repo/src/mpi/coll/gather.cpp" "src/CMakeFiles/odmpi.dir/mpi/coll/gather.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/coll/gather.cpp.o.d"
  "/root/repo/src/mpi/coll/reduce.cpp" "src/CMakeFiles/odmpi.dir/mpi/coll/reduce.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/coll/reduce.cpp.o.d"
  "/root/repo/src/mpi/coll/reduce_scatter.cpp" "src/CMakeFiles/odmpi.dir/mpi/coll/reduce_scatter.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/coll/reduce_scatter.cpp.o.d"
  "/root/repo/src/mpi/coll/scan.cpp" "src/CMakeFiles/odmpi.dir/mpi/coll/scan.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/coll/scan.cpp.o.d"
  "/root/repo/src/mpi/coll/scatter.cpp" "src/CMakeFiles/odmpi.dir/mpi/coll/scatter.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/coll/scatter.cpp.o.d"
  "/root/repo/src/mpi/coll/vcolls.cpp" "src/CMakeFiles/odmpi.dir/mpi/coll/vcolls.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/coll/vcolls.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/CMakeFiles/odmpi.dir/mpi/comm.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/comm.cpp.o.d"
  "/root/repo/src/mpi/conn/ondemand_cm.cpp" "src/CMakeFiles/odmpi.dir/mpi/conn/ondemand_cm.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/conn/ondemand_cm.cpp.o.d"
  "/root/repo/src/mpi/conn/static_cm.cpp" "src/CMakeFiles/odmpi.dir/mpi/conn/static_cm.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/conn/static_cm.cpp.o.d"
  "/root/repo/src/mpi/datatype.cpp" "src/CMakeFiles/odmpi.dir/mpi/datatype.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/datatype.cpp.o.d"
  "/root/repo/src/mpi/device.cpp" "src/CMakeFiles/odmpi.dir/mpi/device.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/device.cpp.o.d"
  "/root/repo/src/mpi/group.cpp" "src/CMakeFiles/odmpi.dir/mpi/group.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/group.cpp.o.d"
  "/root/repo/src/mpi/matching.cpp" "src/CMakeFiles/odmpi.dir/mpi/matching.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/matching.cpp.o.d"
  "/root/repo/src/mpi/op.cpp" "src/CMakeFiles/odmpi.dir/mpi/op.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/op.cpp.o.d"
  "/root/repo/src/mpi/runtime.cpp" "src/CMakeFiles/odmpi.dir/mpi/runtime.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/mpi/runtime.cpp.o.d"
  "/root/repo/src/nas/adi.cpp" "src/CMakeFiles/odmpi.dir/nas/adi.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/nas/adi.cpp.o.d"
  "/root/repo/src/nas/bt.cpp" "src/CMakeFiles/odmpi.dir/nas/bt.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/nas/bt.cpp.o.d"
  "/root/repo/src/nas/cg.cpp" "src/CMakeFiles/odmpi.dir/nas/cg.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/nas/cg.cpp.o.d"
  "/root/repo/src/nas/common.cpp" "src/CMakeFiles/odmpi.dir/nas/common.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/nas/common.cpp.o.d"
  "/root/repo/src/nas/ep.cpp" "src/CMakeFiles/odmpi.dir/nas/ep.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/nas/ep.cpp.o.d"
  "/root/repo/src/nas/ft.cpp" "src/CMakeFiles/odmpi.dir/nas/ft.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/nas/ft.cpp.o.d"
  "/root/repo/src/nas/is.cpp" "src/CMakeFiles/odmpi.dir/nas/is.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/nas/is.cpp.o.d"
  "/root/repo/src/nas/lu.cpp" "src/CMakeFiles/odmpi.dir/nas/lu.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/nas/lu.cpp.o.d"
  "/root/repo/src/nas/mg.cpp" "src/CMakeFiles/odmpi.dir/nas/mg.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/nas/mg.cpp.o.d"
  "/root/repo/src/nas/sp.cpp" "src/CMakeFiles/odmpi.dir/nas/sp.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/nas/sp.cpp.o.d"
  "/root/repo/src/patterns/patterns.cpp" "src/CMakeFiles/odmpi.dir/patterns/patterns.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/patterns/patterns.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/odmpi.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/fiber.cpp" "src/CMakeFiles/odmpi.dir/sim/fiber.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/sim/fiber.cpp.o.d"
  "/root/repo/src/sim/process.cpp" "src/CMakeFiles/odmpi.dir/sim/process.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/sim/process.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/odmpi.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/odmpi.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/sim/stats.cpp.o.d"
  "/root/repo/src/via/completion.cpp" "src/CMakeFiles/odmpi.dir/via/completion.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/via/completion.cpp.o.d"
  "/root/repo/src/via/connection.cpp" "src/CMakeFiles/odmpi.dir/via/connection.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/via/connection.cpp.o.d"
  "/root/repo/src/via/fabric.cpp" "src/CMakeFiles/odmpi.dir/via/fabric.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/via/fabric.cpp.o.d"
  "/root/repo/src/via/memory.cpp" "src/CMakeFiles/odmpi.dir/via/memory.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/via/memory.cpp.o.d"
  "/root/repo/src/via/nic.cpp" "src/CMakeFiles/odmpi.dir/via/nic.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/via/nic.cpp.o.d"
  "/root/repo/src/via/provider.cpp" "src/CMakeFiles/odmpi.dir/via/provider.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/via/provider.cpp.o.d"
  "/root/repo/src/via/vi.cpp" "src/CMakeFiles/odmpi.dir/via/vi.cpp.o" "gcc" "src/CMakeFiles/odmpi.dir/via/vi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
