# Empty dependencies file for odmpi.
# This may be replaced when dependencies are built.
